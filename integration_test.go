package repro

import (
	"bytes"

	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIPipeline builds every binary and drives the full toolchain the
// README documents: generate a snapshot, scan it for vulnerabilities,
// compress it, advise an operator, serve it over RTR, and sync a router.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI integration")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	data := t.TempDir()

	// 1. roagen: tiny calibrated snapshot + signed repository.
	out := run(t, bin, "roagen", "-date", "2017-06-01", "-outdir", data, "-scale", "0.002", "-sign-repo", "5")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("roagen output: %s", out)
	}
	bgpPath := filepath.Join(data, "bgp-20170601.txt")
	vrpPath := filepath.Join(data, "vrps-20170601.csv")
	for _, p := range []string{bgpPath, vrpPath, filepath.Join(data, "repo", "ta.cer"), filepath.Join(data, "repo", "manifest.mft")} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing artifact: %v", err)
		}
	}

	// 2. vulnscan: the calibrated share of vulnerable maxLength users.
	out = run(t, bin, "vulnscan", "-vrps", vrpPath, "-bgp", bgpPath, "-top", "3")
	if !strings.Contains(out, "vulnerable (non-minimal)") {
		t.Fatalf("vulnscan output:\n%s", out)
	}

	// 3. compressroas with -verify (default) and -stats.
	compressed := filepath.Join(data, "compressed.csv")
	out = run(t, bin, "compressroas", "-in", vrpPath, "-out", compressed, "-stats")
	if !strings.Contains(out, "saved") {
		t.Fatalf("compressroas stats missing:\n%s", out)
	}
	inLines, outLines := countLines(t, vrpPath), countLines(t, compressed)
	if outLines >= inLines {
		t.Fatalf("compression did not shrink: %d -> %d lines", inLines, outLines)
	}

	// 3b. compressroas can also scan the signed repository directly.
	out = run(t, bin, "compressroas", "-repo", filepath.Join(data, "repo"), "-stats")
	if !strings.Contains(out, "prefix,maxlength,asn") {
		t.Fatalf("repo-mode output missing CSV header:\n%s", out)
	}

	// 4. roawizard advises a generated RPKI AS (1000 is the first ROA AS).
	out = run(t, bin, "roawizard", "-bgp", bgpPath, "-as", "AS1000")
	if !strings.Contains(out, "Suggested minimal ROA") || !strings.Contains(out, "WARNING") {
		t.Fatalf("roawizard output:\n%s", out)
	}

	// 5. rtrcache + rtrclient over loopback.
	addr := freeAddr(t)
	cache := exec.Command(filepath.Join(bin, "rtrcache"), "-vrps", compressed, "-listen", addr, "-compress")
	var cacheLog bytes.Buffer
	cache.Stderr = &cacheLog
	if err := cache.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cache.Process.Kill()
		cache.Wait()
	}()
	waitForListen(t, addr)
	client := exec.Command(filepath.Join(bin, "rtrclient"), "-cache", addr)
	var clientOut, clientErr bytes.Buffer
	client.Stdout, client.Stderr = &clientOut, &clientErr
	if err := client.Run(); err != nil {
		t.Fatalf("rtrclient: %v\nstderr: %s\ncache log: %s", err, clientErr.String(), cacheLog.String())
	}
	synced := strings.Count(clientOut.String(), "\n") - 1 // minus header
	if synced <= 0 {
		t.Fatalf("router synced %d VRPs:\n%s", synced, clientOut.String())
	}

	// 6. experiments at toy scale renders Table 1.
	out = run(t, bin, "experiments", "-table1", "-scale", "0.002")
	if !strings.Contains(out, "lower bound") {
		t.Fatalf("experiments output:\n%s", out)
	}
}

// run executes a built binary and returns combined output, failing the test
// on unexpected errors (roawizard exits 1 on findings by design).
func run(t *testing.T, bin, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		if name == "roawizard" {
			return string(out) // findings exit non-zero deliberately
		}
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func countLines(t *testing.T, path string) int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Count(raw, []byte("\n"))
}

// freeAddr reserves an ephemeral loopback port and returns host:port. The
// port is released before use; the tiny race is acceptable in tests.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitForListen(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("cache never listened on %s", addr)
}

// TestExamplesRun executes every example main to completion — they are part
// of the public API surface and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping examples")
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil || len(examples) < 4 {
		t.Fatalf("examples missing: %v (%v)", examples, err)
	}
	for _, dir := range examples {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", dir)
			}
		})
	}
}
