// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each bench corresponds to a row of the experiment index in DESIGN.md §3:
//
//	BenchmarkFigure2               F2  — the 4→2 trie compression example
//	BenchmarkCompressToday         S7a/S7c — status-quo compression (39,949 tuples)
//	BenchmarkCompressFullDeployment S7c — full-deployment compression (776,945 tuples)
//	BenchmarkTable1                T1  — all seven scenarios, PDU counts as metrics
//	BenchmarkFigure3a/b            F3  — the weekly timelines (reduced scale)
//	BenchmarkFigure1Pipeline       F1  — sign → scan → compress → RTR → router
//	BenchmarkHijackScenarios       A1  — capture rates on a 1000-AS topology
//	BenchmarkAblation*             A2  — strict vs literal, subsumption, ROV index
//
// Absolute timings differ from the authors' i7-6700 (§7.2: 2.4 s / 36 s) —
// different language and host — but the *shape* must hold: full deployment
// costs roughly an order of magnitude more than today's RPKI, and memory
// scales linearly in tuples. go test -bench=. -benchmem surfaces both.
package repro

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/bgpsim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/prefix"
	"repro/internal/rov"
	"repro/internal/rpki"
	"repro/internal/rpkix"
	"repro/internal/rtr"
	"repro/internal/synth"
)

// figure2Input is the paper's Figure 2 trie (AS 31283).
func figure2Input() *rpki.Set {
	mk := func(s string, ml uint8) rpki.VRP {
		return rpki.VRP{Prefix: prefix.MustParse(s), MaxLength: ml, AS: 31283}
	}
	return rpki.NewSet([]rpki.VRP{
		mk("87.254.32.0/19", 19),
		mk("87.254.32.0/20", 20),
		mk("87.254.48.0/20", 20),
		mk("87.254.32.0/21", 21),
	})
}

func BenchmarkFigure2(b *testing.B) {
	in := figure2Input()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, res := core.Compress(in, core.Options{})
		if out.Len() != 2 || res.Out != 2 {
			b.Fatalf("Figure 2 compression broken: %v", out.VRPs())
		}
	}
}

// headlineDataset caches the 6/1/2017 paper-scale snapshot across benches.
var headlineDataset *synth.Dataset

func getHeadline(b *testing.B) *synth.Dataset {
	b.Helper()
	if headlineDataset == nil {
		headlineDataset = synth.Generate(synth.Params6_1())
	}
	return headlineDataset
}

func BenchmarkCompressToday(b *testing.B) {
	d := getHeadline(b)
	b.ReportAllocs()
	b.ResetTimer()
	var saved float64
	for i := 0; i < b.N; i++ {
		out, res := core.Compress(d.VRPs, core.Options{})
		if out.Len() >= d.VRPs.Len() {
			b.Fatal("no compression")
		}
		saved = res.SavedFraction()
	}
	b.ReportMetric(float64(d.VRPs.Len()), "tuples_in")
	b.ReportMetric(100*saved, "%saved") // paper: 15.90
}

func BenchmarkCompressFullDeployment(b *testing.B) {
	d := getHeadline(b)
	full := core.FullDeploymentMinimal(d.Table)
	b.ReportAllocs()
	b.ResetTimer()
	var saved float64
	for i := 0; i < b.N; i++ {
		_, res := core.Compress(full, core.Options{})
		saved = res.SavedFraction()
	}
	b.ReportMetric(float64(full.Len()), "tuples_in")
	b.ReportMetric(100*saved, "%saved") // paper: 6.04
}

func BenchmarkTable1(b *testing.B) {
	d := getHeadline(b)
	b.ReportAllocs()
	b.ResetTimer()
	var tab experiments.Table1
	for i := 0; i < b.N; i++ {
		tab = experiments.ComputeTable1(d)
	}
	b.ReportMetric(float64(tab.PDUs[experiments.Today]), "pdus_today")                      // paper: 39,949
	b.ReportMetric(float64(tab.PDUs[experiments.TodayCompressed]), "pdus_today_compressed") // 33,615
	b.ReportMetric(float64(tab.PDUs[experiments.TodayMinimalNoML]), "pdus_minimal")         // 52,745
	b.ReportMetric(float64(tab.PDUs[experiments.TodayMinimalCompressed]), "pdus_min_compr") // 49,308
	b.ReportMetric(float64(tab.PDUs[experiments.FullMinimalNoML]), "pdus_full")             // 776,945
	b.ReportMetric(float64(tab.PDUs[experiments.FullMinimalCompressed]), "pdus_full_compr") // 730,008
	b.ReportMetric(float64(tab.PDUs[experiments.FullLowerBound]), "pdus_lower_bound")       // 729,371
}

// figure3 benches run the 8-snapshot timeline at 1/10 scale so a bench
// iteration stays in seconds; cmd/experiments regenerates the full-scale
// figures.
func benchFigure3(b *testing.B, full bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig := experiments.ComputeFigure3(full, func(date time.Time) experiments.Table1 {
			return experiments.ComputeTable1(synth.Generate(synth.SnapshotParams(date).Scale(0.1)))
		})
		for _, s := range fig.Scenarios {
			if len(fig.Series[s]) != 8 {
				b.Fatal("incomplete series")
			}
		}
	}
}

func BenchmarkFigure3a(b *testing.B) { benchFigure3(b, false) }
func BenchmarkFigure3b(b *testing.B) { benchFigure3(b, true) }

func BenchmarkFigure1Pipeline(b *testing.B) {
	// Build the signed repository once (key generation dominates otherwise).
	dir := b.TempDir()
	repo, err := rpkix.NewRepository("bench TA")
	if err != nil {
		b.Fatal(err)
	}
	ca, err := repo.AddCA("bench CA", []string{"0.0.0.0/0"})
	if err != nil {
		b.Fatal(err)
	}
	small := synth.Generate(synth.Params{
		Seed: 1, ROASingles: 30, ROASibC: 10, ROAVulnML: 10, VulnExtras: 5, ROAOriginAS: 50,
	})
	for _, r := range small.ROAs {
		if len(r.Prefixes) == 0 {
			continue
		}
		if err := repo.PublishROA(ca, r); err != nil {
			b.Fatal(err)
		}
	}
	if err := repo.Write(dir); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, err := rpkix.ScanROAs(dir)
		if err != nil {
			b.Fatal(err)
		}
		pdus, _ := core.Compress(scan.VRPs, core.Options{})
		srv := rtr.NewServer(pdus)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(l)
		c, err := rtr.Dial(l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Sync(); err != nil {
			b.Fatal(err)
		}
		if c.Len() != pdus.Len() {
			b.Fatalf("router synced %d of %d PDUs", c.Len(), pdus.Len())
		}
		c.Close()
		srv.Close()
	}
}

func BenchmarkHijackScenarios(b *testing.B) {
	topo := bgpsim.Generate(bgpsim.GenerateParams{Seed: 2017, N: 1000})
	b.ReportAllocs()
	b.ResetTimer()
	var rates map[bgpsim.ScenarioKind]float64
	for i := 0; i < b.N; i++ {
		rates = bgpsim.RunAll(topo, 4)
	}
	b.ReportMetric(100*rates[bgpsim.ForgedOriginSubprefix], "%forged_sub_capture") // ~100
	b.ReportMetric(100*rates[bgpsim.ForgedOriginPrefix], "%forged_pfx_capture")    // << 50
	b.ReportMetric(100*rates[bgpsim.SubprefixMinimalROA], "%minimal_capture")      // 0
}

func BenchmarkAblationStrictVsLiteral(b *testing.B) {
	d := getHeadline(b)
	for _, bench := range []struct {
		name string
		mode core.Mode
	}{{"strict", core.Strict}, {"literal", core.Literal}} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			var out int
			for i := 0; i < b.N; i++ {
				c, _ := core.Compress(d.VRPs, core.Options{Mode: bench.mode})
				out = c.Len()
			}
			b.ReportMetric(float64(out), "tuples_out")
		})
	}
}

func BenchmarkAblationSubsumption(b *testing.B) {
	d := getHeadline(b)
	for _, bench := range []struct {
		name    string
		subsume bool
	}{{"off", false}, {"on", true}} {
		b.Run(bench.name, func(b *testing.B) {
			b.ReportAllocs()
			var out int
			for i := 0; i < b.N; i++ {
				c, _ := core.Compress(d.VRPs, core.Options{Subsumption: bench.subsume})
				out = c.Len()
			}
			b.ReportMetric(float64(out), "tuples_out")
		})
	}
}

func BenchmarkAblationROVIndex(b *testing.B) {
	d := getHeadline(b)
	queries := d.Table.Routes()[:1000]
	b.Run("trie", func(b *testing.B) {
		ix := rov.NewIndex(d.VRPs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			ix.Validate(q.Prefix, q.Origin)
		}
	})
	b.Run("compact", func(b *testing.B) {
		cx := rov.NewCompactIndex(d.VRPs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			cx.Validate(q.Prefix, q.Origin)
		}
	})
	b.Run("linear", func(b *testing.B) {
		ref := rov.NewReference(d.VRPs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			ref.Validate(q.Prefix, q.Origin)
		}
	})
}

// BenchmarkIndexBuild measures constructing the ROV serving index over the
// paper-scale snapshot — the cost a router pays to (re)build its validation
// state from a full cache sync.
func BenchmarkIndexBuild(b *testing.B) {
	d := getHeadline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := rov.NewIndex(d.VRPs)
		if ix.Len() != d.VRPs.Len() {
			b.Fatalf("index holds %d of %d VRPs", ix.Len(), d.VRPs.Len())
		}
	}
}

// BenchmarkIndexValidateBatch measures bulk origin validation over the
// paper-scale table — the serving path a router runs across its whole RIB
// after a table update, which since the path-compressed index landed is the
// compact structure (the bit-trie batch baseline lives in internal/rov's
// BenchmarkValidateBatch). ns/op is per batch of 1000 routes.
func BenchmarkIndexValidateBatch(b *testing.B) {
	d := getHeadline(b)
	cx := rov.NewCompactIndex(d.VRPs)
	rts := d.Table.Routes()[:1000]
	routes := make([]rov.Route, len(rts))
	for i, q := range rts {
		routes[i] = rov.Route{Prefix: q.Prefix, Origin: q.Origin}
	}
	dst := make([]rov.State, len(routes))
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = cx.ValidateBatch(routes, dst)
		}
	})
	b.Run("sorted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = cx.ValidateBatchSorted(routes, dst)
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = cx.ValidateBatchParallel(routes, dst, 4)
		}
	})
}

// BenchmarkLiveIndexDelta measures applying RTR deltas in place to a live
// index over the paper-scale snapshot. Each iteration announces k fresh
// VRPs and withdraws them again; ns/op must scale with k (the delta), not
// with the ~40k-VRP table — compare against BenchmarkIndexBuild, the cost
// the old rebuild-per-update pipeline paid for any delta size.
func BenchmarkLiveIndexDelta(b *testing.B) {
	d := getHeadline(b)
	for _, k := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("delta%d", k), func(b *testing.B) {
			live := rov.NewLiveIndex(d.VRPs)
			delta := make([]rpki.VRP, k)
			for i := range delta {
				// 198.18.0.0/15 (benchmarking space, RFC 2544) is absent from
				// the synthetic snapshot, so every announce is a real insert.
				p, err := prefix.Make(prefix.IPv4,
					(uint64(0xc612)<<48)|uint64(i)<<34, 0, 30)
				if err != nil {
					b.Fatal(err)
				}
				delta[i] = rpki.VRP{Prefix: p, MaxLength: 30, AS: 64500}
			}
			base := live.Len()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				live.Apply(delta, nil)
				live.Apply(nil, delta)
			}
			b.StopTimer()
			if live.Len() != base {
				b.Fatalf("table drifted: %d -> %d VRPs", base, live.Len())
			}
		})
	}
}

func BenchmarkMinimalize(b *testing.B) {
	d := getHeadline(b)
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = core.Minimalize(d.VRPs, d.Table).Len()
	}
	b.ReportMetric(float64(n), "pdus_minimal") // paper: 52,745
}

func BenchmarkSemanticEqualVerifier(b *testing.B) {
	d := getHeadline(b)
	compressed, _ := core.Compress(d.VRPs, core.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, ce := core.SemanticEqual(d.VRPs, compressed); !ok {
			b.Fatalf("verifier rejected a correct compression: %v", ce)
		}
	}
}

// BenchmarkAblationParallelism times the paper's §7.2 future-work item:
// compressing the full-deployment PDU list with tries processed in
// parallel.
func BenchmarkAblationParallelism(b *testing.B) {
	d := getHeadline(b)
	full := core.FullDeploymentMinimal(d.Table)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", par), func(b *testing.B) {
			// One untimed warm-up fills the slab pools, so B/op reports the
			// steady state: with b.N of 2-3 at this scale, the cold-start
			// slab allocations otherwise swing the figure by whole size
			// classes between runs.
			core.Compress(full, core.Options{Parallelism: par})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Compress(full, core.Options{Parallelism: par})
			}
		})
	}
}
