package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rpki"
	"repro/internal/synth"
)

// TestCompressPipelineDifferential pins the parallel merge-based Compress
// pipeline on the paper-scale 6/1/2017 snapshot: for every Mode ×
// Subsumption combination the output must be bit-identical across
// Parallelism 1, 4 and 8, already normalized (the merge must reproduce
// exactly what rpki.NewSet's sort+dedup would build), and — in Strict mode —
// semantically equal to the input.
func TestCompressPipelineDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping paper-scale differential")
	}
	d := synth.Generate(synth.Params6_1())
	for _, mode := range []core.Mode{core.Strict, core.Literal} {
		for _, subsume := range []bool{false, true} {
			name := fmt.Sprintf("mode=%d/subsume=%v", mode, subsume)
			t.Run(name, func(t *testing.T) {
				var baseline *rpki.Set
				var baseRes core.Result
				for _, par := range []int{1, 4, 8} {
					out, res := core.Compress(d.VRPs, core.Options{
						Mode: mode, Subsumption: subsume, Parallelism: par,
					})
					if !out.Equal(rpki.NewSet(out.VRPs())) {
						t.Fatalf("p%d: merge-based output is not normalized", par)
					}
					if baseline == nil {
						baseline, baseRes = out, res
						continue
					}
					if !out.Equal(baseline) {
						t.Fatalf("p%d output differs from p1 (%d vs %d tuples)",
							par, out.Len(), baseline.Len())
					}
					if res != baseRes {
						t.Fatalf("p%d stats differ: %+v vs %+v", par, res, baseRes)
					}
				}
				if mode == core.Strict {
					if err := core.VerifyCompression(d.VRPs, baseline); err != nil {
						t.Fatal(err)
					}
				}
			})
		}
	}
}
