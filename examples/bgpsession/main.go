// Bgpsession replays the paper's §4 attack over an actual BGP-4 session:
// an attacker speaker peers with a route server that validates announcements
// against the RPKI (RFC 6811) before accepting them.
//
// With the victim's non-minimal maxLength ROA installed, the forged-origin
// subprefix announcement sails through validation; after hardening to the
// minimal ROA, the same announcement is dropped as Invalid.
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/bgp"
	"repro/internal/prefix"
	"repro/internal/rov"
	"repro/internal/rpki"
)

func main() {
	for _, hardened := range []bool{false, true} {
		if err := runSession(hardened); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func runSession(hardened bool) error {
	label := "non-minimal maxLength ROA (168.122.0.0/16-24)"
	vrps := []rpki.VRP{{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 24, AS: 111}}
	if hardened {
		label = "minimal ROA {168.122.0.0/16, 168.122.225.0/24}"
		vrps = []rpki.VRP{
			{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 16, AS: 111},
			{Prefix: prefix.MustParse("168.122.225.0/24"), MaxLength: 24, AS: 111},
		}
	}
	fmt.Printf("== route server validating with the %s ==\n", label)
	ix := rov.NewIndex(rpki.NewSet(vrps))

	// TCP loopback: speakers both send OPEN before reading, so the
	// transport must buffer (an unbuffered in-memory pipe would deadlock).
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	attackerConn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return err
	}
	serverConn := <-accepted
	attacker := bgp.NewSpeaker(attackerConn, 666, 0x0a000002)
	server := bgp.NewSpeaker(serverConn, 64500, 0x0a000001)
	defer attacker.Close()
	defer server.Close()

	handshake := make(chan error, 1)
	go func() {
		_, err := server.Handshake()
		handshake <- err
	}()
	if _, err := attacker.Handshake(); err != nil {
		return fmt.Errorf("attacker handshake: %w", err)
	}
	if err := <-handshake; err != nil {
		return fmt.Errorf("server handshake: %w", err)
	}
	fmt.Printf("session up: AS%d <-> AS%d\n", attacker.AS, attacker.PeerAS())

	loopDone := make(chan error, 1)
	//repro:owns-goroutine (*Speaker).Close
	go func() {
		loopDone <- server.ReadLoop(func(a bgp.Announcement) bool {
			state := ix.Validate(a.Prefix, a.Origin())
			fmt.Printf("  UPDATE %-18s path %-12v -> %v\n", a.Prefix, a.Path, state)
			return state != rov.Invalid
		})
	}()

	// The forged-origin subprefix hijack: path claims AS 111 as origin.
	hijack := bgp.Announcement{
		Prefix: prefix.MustParse("168.122.0.0/24"),
		Path:   []rpki.ASN{666, 111},
	}
	if err := attacker.Announce(hijack); err != nil {
		return err
	}
	// Drain: close the session so the loop returns, then inspect the RIB.
	attacker.Close()
	if err := <-loopDone; err != nil {
		return err
	}
	if server.RIBInTable().ContainsPrefix(hijack.Prefix) {
		fmt.Println("result: hijack route INSTALLED — all traffic for the /24 now flows to AS 666")
	} else {
		fmt.Println("result: hijack route rejected — the minimal ROA closed the hole")
	}
	return nil
}
