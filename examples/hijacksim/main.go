// Hijacksim quantifies the paper's attack comparison (§4–§5) on a synthetic
// 1000-AS Internet: how much traffic does the attacker capture under each
// attack/defense combination?
//
// Expected shape (the paper's argument):
//   - subprefix hijack with no ROV:            ~100%  (longest-prefix match)
//   - forged-origin subprefix vs maxLength ROA: ~100%  (ROV cannot help — §4)
//   - forged-origin same-prefix vs minimal ROA: well under 50% (traffic splits — §5)
//   - subprefix hijack vs minimal ROA + ROV:      0%  (dropped as Invalid)
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bgpsim"
)

func main() {
	topo := bgpsim.Generate(bgpsim.GenerateParams{Seed: 2017, N: 1000})
	fmt.Printf("topology: %d ASes (tier-1 clique + middle tier + edge)\n\n", topo.N())

	// One concrete embedding first, with the running-example prefixes.
	s := bgpsim.RunningExampleSetup(topo, topo.N()-3, topo.N()-11)
	fmt.Printf("single trial (victim node %d, attacker node %d):\n", s.Victim, s.Attacker)
	for k := bgpsim.SubprefixNoROV; k <= bgpsim.ForgedOriginPrefix; k++ {
		r := bgpsim.RunScenario(k, s)
		fmt.Printf("  %-58s %5.1f%%\n", r.Kind, 100*r.CaptureRate)
	}

	// Then the mean over 32 independent victim/attacker embeddings.
	fmt.Printf("\nmean over 32 trials:\n")
	rates := bgpsim.RunAll(topo, 32)
	if err := bgpsim.RenderResults(os.Stdout, rates); err != nil {
		log.Fatal(err)
	}

	if rates[bgpsim.ForgedOriginSubprefix] > 2*rates[bgpsim.ForgedOriginPrefix] {
		fmt.Println("\nconclusion: the forged-origin SUBPREFIX hijack (enabled by non-minimal")
		fmt.Println("maxLength ROAs) is dramatically stronger than the same-prefix variant —")
		fmt.Println("\"as bad as a subprefix hijack\", which the RPKI was built to stop.")
	}
}
