// Quickstart: build ROAs, expand them to VRPs, validate BGP routes against
// them (RFC 6811), compress the PDU list with the paper's algorithm, and
// prove the compressed list authorizes exactly the same routes.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rov"
	"repro/internal/rpki"
)

func main() {
	// 1. A ROA, as an operator would configure it at their RIR portal:
	//    AS 31283 originates four prefixes (the Figure 2 example).
	roa := rpki.ROA{AS: 31283, Prefixes: []rpki.ROAPrefix{
		{Prefix: prefix.MustParse("87.254.32.0/19"), MaxLength: 19},
		{Prefix: prefix.MustParse("87.254.32.0/20"), MaxLength: 20},
		{Prefix: prefix.MustParse("87.254.48.0/20"), MaxLength: 20},
		{Prefix: prefix.MustParse("87.254.32.0/21"), MaxLength: 21},
	}}
	if err := roa.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Expand to the VRP tuples a local cache would push to routers.
	vrps := rpki.SetFromROAs([]rpki.ROA{roa})
	fmt.Printf("PDU list (%d tuples):\n", vrps.Len())
	for _, v := range vrps.VRPs() {
		fmt.Println(" ", v)
	}

	// 3. Validate some BGP announcements (RFC 6811).
	ix := rov.NewIndex(vrps)
	for _, route := range []struct {
		p      string
		origin rpki.ASN
	}{
		{"87.254.32.0/19", 31283}, // the legitimate origination
		{"87.254.32.0/20", 31283},
		{"87.254.40.0/21", 31283}, // NOT in the ROA: Invalid
		{"87.254.32.0/19", 666},   // prefix hijack: Invalid
		{"192.0.2.0/24", 666},     // unrelated: NotFound
	} {
		p := prefix.MustParse(route.p)
		fmt.Printf("validate %-18s %-8s -> %v\n", p, route.origin, ix.Validate(p, route.origin))
	}

	// 4. Compress the PDU list (the paper's contribution) and verify that
	//    the result authorizes exactly the same routes.
	compressed, res := core.Compress(vrps, core.Options{})
	fmt.Printf("\ncompressed %d -> %d tuples (%.1f%% saved):\n", res.In, res.Out, 100*res.SavedFraction())
	for _, v := range compressed.VRPs() {
		fmt.Println(" ", v)
	}
	if err := core.VerifyCompression(vrps, compressed); err != nil {
		fmt.Fprintln(os.Stderr, "verification failed:", err)
		os.Exit(1)
	}
	fmt.Println("semantic equivalence verified: no new routes authorized")
}
