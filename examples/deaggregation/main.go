// Deaggregation walks through the paper's running example (§2–§5): Boston
// University's AS 111 and 168.122.0.0/16.
//
// It shows (1) why de-aggregating under a minimal ROA breaks, (2) how the
// maxLength shortcut fixes de-aggregation but opens the forged-origin
// subprefix hijack, and (3) how the minimal multi-prefix ROA gives the same
// operational flexibility without the attack surface.
package main

import (
	"fmt"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rov"
	"repro/internal/rpki"
)

func main() {
	p16 := prefix.MustParse("168.122.0.0/16")
	p24 := prefix.MustParse("168.122.225.0/24")  // the TE de-aggregation
	hijack := prefix.MustParse("168.122.0.0/24") // authorized but unannounced
	const bu, attacker = rpki.ASN(111), rpki.ASN(666)

	table := bgp.NewTable([]bgp.Route{
		{Prefix: p16, Origin: bu},
		{Prefix: p24, Origin: bu},
	})

	fmt.Println("== 1. Minimal ROA without the /24: de-aggregation breaks ==")
	roa1 := rpki.NewSet([]rpki.VRP{{Prefix: p16, MaxLength: 16, AS: bu}})
	ix1 := rov.NewIndex(roa1)
	fmt.Printf("  %v: origin %v -> %v   (the /16 works)\n", p16, bu, ix1.Validate(p16, bu))
	fmt.Printf("  %v: origin %v -> %v (the TE /24 is dropped!)\n", p24, bu, ix1.Validate(p24, bu))

	fmt.Println("\n== 2. The maxLength shortcut: ROA (168.122.0.0/16-24, AS 111) ==")
	roa2 := rpki.NewSet([]rpki.VRP{{Prefix: p16, MaxLength: 24, AS: bu}})
	ix2 := rov.NewIndex(roa2)
	fmt.Printf("  %v: origin %v -> %v (de-aggregation now valid)\n", p24, bu, ix2.Validate(p24, bu))
	fmt.Printf("  %v: \"path (%v, %v)\" -> %v (forged-origin subprefix hijack is ALSO valid)\n",
		hijack, attacker, bu, ix2.Validate(hijack, bu))
	rep := core.AnalyzeVulnerabilities(roa2, table, true)
	for _, vu := range rep.Vulnerabilities {
		fmt.Printf("  vulnerability: %v leaves %d authorized routes unannounced; witness %v\n",
			vu.VRP, vu.UnannouncedRoutes, vu.Witness)
	}

	fmt.Println("\n== 3. The fix: a minimal ROA listing exactly the announced prefixes ==")
	minimal := core.Minimalize(roa2, table)
	fmt.Printf("  Minimalize => %v\n", minimal.VRPs())
	ix3 := rov.NewIndex(minimal)
	fmt.Printf("  %v: origin %v -> %v (de-aggregation still valid)\n", p24, bu, ix3.Validate(p24, bu))
	fmt.Printf("  %v: \"path (%v, %v)\" -> %v (the hijack is now Invalid)\n",
		hijack, attacker, bu, ix3.Validate(hijack, bu))
	if ok, _ := core.IsMinimal(minimal, table); ok {
		fmt.Println("  the converted ROA is minimal: it authorizes exactly what BGP announces")
	}
}
