// Rtrpipeline runs the complete Figure 1 pipeline in one process:
//
//	signed ROA repository --scan--> validated VRPs --compress (§7)-->
//	RTR cache --RPKI-to-Router over TCP--> router client --> origin validation
//
// It then updates the repository (simulating an operator hardening a
// non-minimal ROA) and shows the incremental update reaching the router.
package main

import (
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rov"
	"repro/internal/rpki"
	"repro/internal/rpkix"
	"repro/internal/rtr"
)

func main() {
	// 1. Publish a signed repository: a TA, one CA, two ROAs — one of them
	//    a non-minimal maxLength ROA.
	dir, err := buildRepository()
	if err != nil {
		log.Fatal(err)
	}

	// 2. The local cache scans and cryptographically validates the objects.
	scan, err := rpkix.ScanROAs(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan: %d ROAs validated, %d rejected -> %d VRPs\n",
		len(scan.ROAs), len(scan.Rejected), scan.VRPs.Len())

	// 3. Compress the PDU list before serving it (the §7 toolchain).
	pdus, res := core.Compress(scan.VRPs, core.Options{})
	if err := core.VerifyCompression(scan.VRPs, pdus); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compress: %d -> %d PDUs (%.1f%% saved)\n", res.In, res.Out, 100*res.SavedFraction())

	// 4. Serve over RPKI-to-Router and sync a router client.
	srv := rtr.NewServer(pdus)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	router, err := rtr.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	// The router's validation table is a live index fed by the protocol's
	// deltas: every sync — the initial full one included — flows through a
	// Subscribe consumer and applies in O(delta), never rebuilding the
	// index. The client's dispatch loop owns the connection and delivers
	// deltas to all subscribers in order, on one goroutine.
	live := rov.NewLiveIndex(rpki.NewSet(nil))
	router.Subscribe(func(announced, withdrawn []rpki.VRP) {
		live.Apply(announced, withdrawn)
	})
	serial, err := router.Sync()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router: synchronized %d VRPs at serial %d\n", router.Len(), serial)

	// 5. The router validates announcements with its synchronized table.
	hijack := prefix.MustParse("168.122.0.0/24")
	fmt.Printf("router: forged-origin hijack %v AS111 -> %v (maxLength ROA leaves it Valid!)\n",
		hijack, live.Validate(hijack, 111))

	// 6. The operator hardens the ROA to a minimal one; the cache pushes an
	//    incremental update; the router's live index follows the delta.
	minimal := rpki.NewSet([]rpki.VRP{
		{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 16, AS: 111},
		{Prefix: prefix.MustParse("168.122.225.0/24"), MaxLength: 24, AS: 111},
		{Prefix: prefix.MustParse("87.254.32.0/19"), MaxLength: 19, AS: 31283},
	})
	srv.UpdateSet(minimal)
	if _, err := router.WaitNotify(); err != nil {
		log.Fatal(err)
	}
	serial, err = router.Sync()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("router: incremental update to serial %d (%d VRPs, index updated in place)\n",
		serial, live.Len())
	fmt.Printf("router: forged-origin hijack %v AS111 -> %v (hardened: now Invalid)\n",
		hijack, live.Validate(hijack, 111))
}

func buildRepository() (string, error) {
	dir, err := os.MkdirTemp("", "rtrpipeline-repo")
	if err != nil {
		return "", err
	}
	repo, err := rpkix.NewRepository("Pipeline TA")
	if err != nil {
		return "", err
	}
	ca, err := repo.AddCA("Pipeline CA", []string{"168.122.0.0/16", "87.254.32.0/19"})
	if err != nil {
		return "", err
	}
	roas := []rpki.ROA{
		// The §4 non-minimal ROA.
		{AS: 111, Prefixes: []rpki.ROAPrefix{
			{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 24},
		}},
		// Figure 2's compressible minimal ROA.
		{AS: 31283, Prefixes: []rpki.ROAPrefix{
			{Prefix: prefix.MustParse("87.254.32.0/19"), MaxLength: 19},
			{Prefix: prefix.MustParse("87.254.32.0/20"), MaxLength: 20},
			{Prefix: prefix.MustParse("87.254.48.0/20"), MaxLength: 20},
			{Prefix: prefix.MustParse("87.254.32.0/21"), MaxLength: 21},
		}},
	}
	for _, r := range roas {
		if err := repo.PublishROA(ca, r); err != nil {
			return "", err
		}
	}
	return dir, repo.Write(dir)
}
