// Rtrpipeline runs the complete Figure 1 pipeline in one process:
//
//	signed ROA repository --scan--> validated VRPs --compress (§7)-->
//	RTR cache --RPKI-to-Router over TCP--> router client --> origin validation
//
// It then updates the repository (simulating an operator hardening a
// non-minimal ROA) and shows the incremental update reaching the router;
// finally it kills the cache outright and restarts it with a fresh session
// ID, showing the reconnect supervisor redialing, falling back through
// Cache Reset, and converging the router's live index on the post-restart
// table — the deployment story of a router that stays continuously
// validated across cache restarts.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rov"
	"repro/internal/rpki"
	"repro/internal/rpkix"
	"repro/internal/rtr"
)

func main() {
	// 1. Publish a signed repository: a TA, one CA, two ROAs — one of them
	//    a non-minimal maxLength ROA.
	dir, err := buildRepository()
	if err != nil {
		log.Fatal(err)
	}

	// 2. The local cache scans and cryptographically validates the objects.
	scan, err := rpkix.ScanROAs(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan: %d ROAs validated, %d rejected -> %d VRPs\n",
		len(scan.ROAs), len(scan.Rejected), scan.VRPs.Len())

	// 3. Compress the PDU list before serving it (the §7 toolchain).
	pdus, res := core.Compress(scan.VRPs, core.Options{})
	if err := core.VerifyCompression(scan.VRPs, pdus); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compress: %d -> %d PDUs (%.1f%% saved)\n", res.In, res.Out, 100*res.SavedFraction())

	// 4. Serve over RPKI-to-Router and sync a router through the reconnect
	//    supervisor. The router's validation table is a live index fed by
	//    the protocol's deltas: every sync — the initial full one included —
	//    flows through a persistent subscriber and applies in O(delta),
	//    never rebuilding the index. The supervisor re-registers the
	//    subscriber on every reconnect, so the delta stream survives the
	//    cache restart in step 7.
	srv := rtr.NewServer(pdus)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := l.Addr().String()
	go srv.Serve(l)

	live := rov.NewLiveIndex(rpki.NewSet(nil))
	sup := rtr.NewSupervisor(func() (net.Conn, error) { return net.Dial("tcp", addr) })
	sup.BackoffMin = 5 * time.Millisecond
	sup.BackoffMax = 100 * time.Millisecond
	sup.Subscribe(func(announced, withdrawn []rpki.VRP) {
		live.Apply(announced, withdrawn)
	})
	sup.OnReset(live.ResetTo)
	updates := make(chan rtr.Serial, 16)
	sup.OnUpdate = func(serial rtr.Serial) {
		select {
		case updates <- serial:
		default:
		}
	}
	go sup.Run()
	defer sup.Stop()

	serial := <-updates
	fmt.Printf("router: synchronized %d VRPs at serial %d\n", live.Len(), serial)

	// 5. The router validates announcements with its synchronized table.
	hijack := prefix.MustParse("168.122.0.0/24")
	fmt.Printf("router: forged-origin hijack %v AS111 -> %v (maxLength ROA leaves it Valid!)\n",
		hijack, live.Validate(hijack, 111))

	// 6. The operator hardens the ROA to a minimal one; the cache pushes an
	//    incremental update; the router's live index follows the delta.
	minimal := rpki.NewSet([]rpki.VRP{
		{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 16, AS: 111},
		{Prefix: prefix.MustParse("168.122.225.0/24"), MaxLength: 24, AS: 111},
		{Prefix: prefix.MustParse("87.254.32.0/19"), MaxLength: 19, AS: 31283},
	})
	srv.UpdateSet(minimal)
	serial = <-updates
	fmt.Printf("router: incremental update to serial %d (%d VRPs, index updated in place)\n",
		serial, live.Len())
	fmt.Printf("router: forged-origin hijack %v AS111 -> %v (hardened: now Invalid)\n",
		hijack, live.Validate(hijack, 111))

	// 7. The cache process dies and is restarted fresh — new session ID, no
	//    retained deltas, and a table the restarted cache revalidated in the
	//    meantime (the AS 31283 ROA expired). The supervisor redials with
	//    backoff; its Serial Query for the old session is answered with
	//    Cache Reset, the client falls back to a Reset Query, and the live
	//    index converges on the post-restart table by the diff against the
	//    carried one — no rebuild.
	srv.Close()
	restarted := rpki.NewSet([]rpki.VRP{
		{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 16, AS: 111},
		{Prefix: prefix.MustParse("168.122.225.0/24"), MaxLength: 24, AS: 111},
	})
	srv2 := rtr.NewServer(restarted)
	srv2.SetSession(0xf4e5, 1)
	l2, err := relisten(addr)
	if err != nil {
		log.Fatal(err)
	}
	go srv2.Serve(l2)
	defer srv2.Close()

	serial = <-updates
	st := sup.Stats()
	fmt.Printf("router: cache restarted with a new session; recovered at serial %d (%d VRPs; %d dials, %d reset fallbacks, %d rebuilds)\n",
		serial, live.Len(), st.Dials, st.ResetFallbacks, st.Rebuilds)
	expired := prefix.MustParse("87.254.32.0/19")
	fmt.Printf("router: %v AS31283 -> %v (ROA gone after restart), hijack still %v, healthy=%v\n",
		expired, live.Validate(expired, 31283), live.Validate(hijack, 111), sup.Healthy())
}

// relisten rebinds the address the killed cache listened on.
func relisten(addr string) (net.Listener, error) {
	var err error
	for i := 0; i < 100; i++ {
		var l net.Listener
		if l, err = net.Listen("tcp", addr); err == nil {
			return l, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, err
}

func buildRepository() (string, error) {
	dir, err := os.MkdirTemp("", "rtrpipeline-repo")
	if err != nil {
		return "", err
	}
	repo, err := rpkix.NewRepository("Pipeline TA")
	if err != nil {
		return "", err
	}
	ca, err := repo.AddCA("Pipeline CA", []string{"168.122.0.0/16", "87.254.32.0/19"})
	if err != nil {
		return "", err
	}
	roas := []rpki.ROA{
		// The §4 non-minimal ROA.
		{AS: 111, Prefixes: []rpki.ROAPrefix{
			{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 24},
		}},
		// Figure 2's compressible minimal ROA.
		{AS: 31283, Prefixes: []rpki.ROAPrefix{
			{Prefix: prefix.MustParse("87.254.32.0/19"), MaxLength: 19},
			{Prefix: prefix.MustParse("87.254.32.0/20"), MaxLength: 20},
			{Prefix: prefix.MustParse("87.254.48.0/20"), MaxLength: 20},
			{Prefix: prefix.MustParse("87.254.32.0/21"), MaxLength: 21},
		}},
	}
	for _, r := range roas {
		if err := repo.PublishROA(ca, r); err != nil {
			return "", err
		}
	}
	return dir, repo.Write(dir)
}
