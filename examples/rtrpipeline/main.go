// Rtrpipeline runs the complete Figure 1 pipeline in one process:
//
//	signed ROA repository --scan--> validated VRPs --compress (§7)-->
//	RTR caches --RPKI-to-Router over TCP--> router client --> origin validation
//
// The router follows a pair of caches — a preferred primary and a backup —
// through the multi-cache failover supervisor. After the operator hardens a
// non-minimal ROA (the incremental update reaching the router as a delta),
// the primary cache is killed outright: the supervisor fails over to the
// backup, delivering the structural diff between the table the router holds
// and the backup's view — no rebuild, even though the backup had revalidated
// in the meantime and its table differs. When the primary returns (a fresh
// process: new session ID, no retained state), the supervisor fails back to
// it, again by delta — the deployment story of a router that stays
// continuously validated across cache deaths, divergent backups, and
// recoveries.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/prefix"
	"repro/internal/rov"
	"repro/internal/rpki"
	"repro/internal/rpkix"
	"repro/internal/rtr"
)

func main() {
	// 1. Publish a signed repository: a TA, one CA, two ROAs — one of them
	//    a non-minimal maxLength ROA.
	dir, err := buildRepository()
	if err != nil {
		log.Fatal(err)
	}

	// 2. The local cache scans and cryptographically validates the objects.
	scan, err := rpkix.ScanROAs(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan: %d ROAs validated, %d rejected -> %d VRPs\n",
		len(scan.ROAs), len(scan.Rejected), scan.VRPs.Len())

	// 3. Compress the PDU list before serving it (the §7 toolchain).
	pdus, res := core.Compress(scan.VRPs, core.Options{})
	if err := core.VerifyCompression(scan.VRPs, pdus); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compress: %d -> %d PDUs (%.1f%% saved)\n", res.In, res.Out, 100*res.SavedFraction())

	// 4. Serve the table from two caches and sync a router through the
	//    multi-cache supervisor. The router's validation table is a live
	//    index fed by the delta stream: every delivery — initial sync,
	//    incremental update, failover, fail-back — applies in O(delta),
	//    never rebuilding the index.
	primary := rtr.NewServer(pdus)
	lp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	primaryAddr := lp.Addr().String()
	//repro:owns-goroutine (*Server).Close
	go primary.Serve(lp)

	backup := rtr.NewServer(pdus)
	backup.SetSession(0xbac1, 1)
	lb, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	backupAddr := lb.Addr().String()
	//repro:owns-goroutine (*Server).Close
	go backup.Serve(lb)
	defer backup.Close()

	live := rov.NewLiveIndex(rpki.NewSet(nil))
	m := rtr.NewMultiSupervisor(
		rtr.Upstream{Name: "primary", Dial: func() (net.Conn, error) { return net.Dial("tcp", primaryAddr) }},
		rtr.Upstream{Name: "backup", Dial: func() (net.Conn, error) { return net.Dial("tcp", backupAddr) }},
	)
	m.BackoffMin = 5 * time.Millisecond
	m.BackoffMax = 100 * time.Millisecond
	m.Subscribe(func(announced, withdrawn []rpki.VRP) {
		live.Apply(announced, withdrawn)
	})
	m.OnReset(live.ResetTo)
	updates := make(chan rtr.Serial, 16)
	m.OnUpdate = func(serial rtr.Serial) {
		select {
		case updates <- serial:
		default:
		}
	}
	go m.Run()
	defer m.Stop()

	serial := <-updates
	fmt.Printf("router: synchronized %d VRPs at serial %d from the primary cache\n", live.Len(), serial)

	// 5. The router validates announcements with its synchronized table.
	hijack := prefix.MustParse("168.122.0.0/24")
	fmt.Printf("router: forged-origin hijack %v AS111 -> %v (maxLength ROA leaves it Valid!)\n",
		hijack, live.Validate(hijack, 111))

	// 6. The operator hardens the ROA to a minimal one; both caches pick up
	//    the change; the router's live index follows the primary's delta.
	minimal := rpki.NewSet([]rpki.VRP{
		{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 16, AS: 111},
		{Prefix: prefix.MustParse("168.122.225.0/24"), MaxLength: 24, AS: 111},
		{Prefix: prefix.MustParse("87.254.32.0/19"), MaxLength: 19, AS: 31283},
	})
	primary.UpdateSet(minimal)
	backup.UpdateSet(minimal)
	serial = <-updates
	fmt.Printf("router: incremental update to serial %d (%d VRPs, index updated in place)\n",
		serial, live.Len())
	fmt.Printf("router: forged-origin hijack %v AS111 -> %v (hardened: now Invalid)\n",
		hijack, live.Validate(hijack, 111))

	// 7. The backup revalidates on its own schedule and notices the AS 31283
	//    ROA expired — its table now differs from the primary's. Then the
	//    primary cache dies. The supervisor fails over to the backup and
	//    delivers the structural diff between the table the router holds and
	//    the backup's snapshot: one withdrawal, no rebuild.
	revalidated := rpki.NewSet([]rpki.VRP{
		{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 16, AS: 111},
		{Prefix: prefix.MustParse("168.122.225.0/24"), MaxLength: 24, AS: 111},
	})
	backup.UpdateSet(revalidated)
	primary.Close()
	waitUntil(func() bool { return m.Active() == 1 && live.Len() == revalidated.Len() })
	st := m.Stats()
	fmt.Printf("router: primary died; failed over to backup by delta (%d VRPs; %d switches, %d rebuilds)\n",
		live.Len(), st.Switches, st.Rebuilds)
	expired := prefix.MustParse("87.254.32.0/19")
	fmt.Printf("router: %v AS31283 -> %v (ROA gone on the backup), hijack still %v\n",
		expired, live.Validate(expired, 31283), live.Validate(hijack, 111))

	// 8. The primary returns as a fresh process — new session ID, no
	//    retained deltas, table revalidated to match. The supervisor fails
	//    back to the preferred cache, delivering the (here empty) diff
	//    between the backup's table and the restarted primary's — the
	//    router never rebuilds.
	primary2 := rtr.NewServer(revalidated)
	primary2.SetSession(0xf4e5, 1)
	lp2, err := relisten(primaryAddr)
	if err != nil {
		log.Fatal(err)
	}
	//repro:owns-goroutine (*Server).Close
	go primary2.Serve(lp2)
	defer primary2.Close()

	waitUntil(func() bool { return m.Active() == 0 })
	st = m.Stats()
	fmt.Printf("router: primary restarted with a new session; failed back (%d VRPs; healthy=%v)\n",
		live.Len(), m.Healthy())
	for _, u := range st.Upstreams {
		fmt.Printf("router: cache %s: up=%t active=%t failovers=%d failbacks=%d dials=%d reset-fallbacks=%d rebuilds=%d\n",
			u.Name, u.Up, u.Active, u.Failovers, u.Failbacks,
			u.Supervisor.Dials, u.Supervisor.ResetFallbacks, u.Supervisor.Rebuilds)
	}

	// 9. The serving read path. Between deltas the live index answers from
	//    whichever structure its current version carries: the bit trie right
	//    after an update, the path-compressed compact index once a
	//    compaction republishes it (this example's table is far below the
	//    compaction thresholds, so the delta stream leaves it on the bit
	//    trie). A router pinning its hot path derives the compact index
	//    explicitly — the same build compaction runs — and validates
	//    identical answers at a fraction of the per-query latency.
	engine := "bit-trie"
	if live.CompactSnapshot() != nil {
		engine = "compact"
	}
	fmt.Printf("router: live index serving from the %s structure (%d VRPs)\n", engine, live.Len())
	cx := rov.CompactFromIndex(live.Snapshot())
	fmt.Printf("router: compact validator: hijack %v AS111 -> %v, expired %v AS31283 -> %v\n",
		hijack, cx.Validate(hijack, 111), expired, cx.Validate(expired, 31283))
}

// waitUntil polls cond until it holds (or a deadline long past any backoff
// in this example expires).
func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			log.Fatal("rtrpipeline: state not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// relisten rebinds the address the killed cache listened on.
func relisten(addr string) (net.Listener, error) {
	var err error
	for i := 0; i < 100; i++ {
		var l net.Listener
		if l, err = net.Listen("tcp", addr); err == nil {
			return l, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, err
}

func buildRepository() (string, error) {
	dir, err := os.MkdirTemp("", "rtrpipeline-repo")
	if err != nil {
		return "", err
	}
	repo, err := rpkix.NewRepository("Pipeline TA")
	if err != nil {
		return "", err
	}
	ca, err := repo.AddCA("Pipeline CA", []string{"168.122.0.0/16", "87.254.32.0/19"})
	if err != nil {
		return "", err
	}
	roas := []rpki.ROA{
		// The §4 non-minimal ROA.
		{AS: 111, Prefixes: []rpki.ROAPrefix{
			{Prefix: prefix.MustParse("168.122.0.0/16"), MaxLength: 24},
		}},
		// Figure 2's compressible minimal ROA.
		{AS: 31283, Prefixes: []rpki.ROAPrefix{
			{Prefix: prefix.MustParse("87.254.32.0/19"), MaxLength: 19},
			{Prefix: prefix.MustParse("87.254.32.0/20"), MaxLength: 20},
			{Prefix: prefix.MustParse("87.254.48.0/20"), MaxLength: 20},
			{Prefix: prefix.MustParse("87.254.32.0/21"), MaxLength: 21},
		}},
	}
	for _, r := range roas {
		if err := repo.PublishROA(ca, r); err != nil {
			return "", err
		}
	}
	return dir, repo.Write(dir)
}
