GO ?= go

.PHONY: check fmt vet lint build test race bench bench-smoke bench-diff soak soak-smoke fuzz

# check is the CI gate: formatting, vet, the repo-invariant lint, build, and
# the race-enabled tests.
check: fmt vet lint build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# vet runs with the repo's format-wrapper and must-use-result knowledge.
# -printf.funcs ADDS to vet's defaults; -unusedresult.funcs REPLACES them,
# so the stdlib defaults are restated before the repo's pure functions.
VET_PRINTF_FUNCS = logf,protoErr,Reportf
VET_UNUSEDRESULT_STD = context.WithCancel,context.WithDeadline,context.WithTimeout,context.WithValue,errors.New,fmt.Errorf,fmt.Sprint,fmt.Sprintf,slices.Clip,slices.Compact,slices.CompactFunc,slices.Delete,slices.DeleteFunc,slices.Grow,slices.Insert,slices.Replace,sort.Reverse
VET_UNUSEDRESULT_REPRO = repro/internal/rtr.SerialLess,repro/internal/rtr.SerialNewer,repro/internal/rtr.SerialAdvance,repro/internal/rov.NewIndex,repro/internal/rov.NewCompactIndex,repro/internal/rov.CompactFromIndex,repro/internal/rov.Diff
vet:
	$(GO) vet -printf.funcs=$(VET_PRINTF_FUNCS) \
		-unusedresult.funcs=$(VET_UNUSEDRESULT_STD),$(VET_UNUSEDRESULT_REPRO) ./...

# lint runs reprolint, the in-tree static-analysis suite for the invariants
# the hot paths depend on (see cmd/reprolint and the README). Zero
# unsuppressed findings is the bar; suppress with
# //lint:ignore <check> <reason>.
lint:
	$(GO) run ./cmd/reprolint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# BENCH_JSON is where bench archives its parsed results (committed to the
# repo so the perf trajectory across PRs is tracked in-tree).
BENCH_JSON ?= BENCH_PR10.json

# bench runs the in-package core, rov, and rtr benchmarks plus the
# paper-evaluation benches; -count=1 defeats test caching so numbers are
# always fresh. A moderate rtrload soak rides along so the archive carries
# end-to-end serving latency next to the micro numbers (the full-scale soak
# is the separate `make soak`). The raw output is parsed into $(BENCH_JSON)
# by cmd/benchjson.
# The rider soak is sized for the single-CPU dev container: 500 pollers at
# 250ms churn is ~2000 incremental syncs/s, which one core carries without
# starving pollers into the server's (correct) overload shedding; crank the
# knobs on real hardware.
RTRLOAD_CLIENTS ?= 500
RTRLOAD_DURATION ?= 10s
RTRLOAD_INTERVAL ?= 250ms
RTRLOAD_VRPS ?= 20000
bench:
	@rm -f bench.out
	$(GO) test -run='^$$' -bench=. -benchmem -count=1 ./internal/core/ ./internal/rov/ ./internal/rtr/ . > bench.out 2>&1; \
		status=$$?; cat bench.out; \
		if [ $$status -ne 0 ]; then rm -f bench.out; exit $$status; fi
	$(GO) run ./cmd/rtrload -clients $(RTRLOAD_CLIENTS) -duration $(RTRLOAD_DURATION) \
		-vrps $(RTRLOAD_VRPS) -churn 64 -interval $(RTRLOAD_INTERVAL) -bench-out bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out $(BENCH_JSON)
	@rm -f bench.out

# soak is the full router-population acceptance run: thousands of pollers,
# sustained churn, a handful of wedged routers the cache must shed without
# the publish path noticing. soak-smoke is the small configuration CI runs
# on every push.
soak:
	$(GO) run ./cmd/rtrload -clients 2000 -duration 60s -vrps 50000 -churn 64 \
		-interval 1s -stall 8 -write-timeout 5s

soak-smoke:
	$(GO) run ./cmd/rtrload -clients 200 -duration 10s -vrps 10000 -churn 32 \
		-interval 100ms -stall 2 -write-timeout 2s

# bench-smoke is the quick pipeline-regression gate CI runs: the core and rov
# micro benches and the headline compression bench at a handful of iterations.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=10x -benchmem -count=1 ./internal/core/ ./internal/rov/
	$(GO) test -run='^$$' -bench='^(BenchmarkFigure2|BenchmarkCompressToday)$$' -benchtime=3x -benchmem -count=1 .

# bench-diff compares two archived bench runs (the per-PR BENCH_*.json files)
# and prints per-benchmark ns/op, B/op, and allocs/op deltas; a regression
# beyond the per-metric threshold fails the target, so the in-repo trend
# doubles as a review gate. Wall-clock (ns/op) gets a generous default that
# sits above the noise floor of the single-CPU dev container (tens of
# percent between runs even on untouched code) — tighten it on quiet
# hardware: make bench-diff BENCH_THRESHOLD=10. B/op and allocs/op are exact
# and gated tightly by BENCH_THRESHOLD_MEM, so allocation regressions fail
# CI even where wall-clock noise would hide them — except for the
# benchmarks listed in BENCH_MEM_NOISY, whose allocation profile is
# scheduler-dependent (parallel workers grow worker-local arenas by
# demand-order doubling, and the live-index delta benches amortize the
# background compactor's O(table) rebuild allocations into whatever
# iteration count the run happened to draw, so B/op swings run to run on
# identical code); those are gated at the wall-clock threshold instead.
# The live-index delta benches are additionally BENCH_TIME_NOISY: their
# timed loop races the asynchronous compactor, so whether a rebuild lands
# inside the window is a scheduler coin flip and ns/op on identical code
# spans well past the ordinary threshold (measured: 2.9–6.3 µs for the same
# binary); they get the looser BENCH_THRESHOLD_TIME_NOISY gate.
BENCH_OLD ?= BENCH_PR8.json
BENCH_NEW ?= $(BENCH_JSON)
BENCH_THRESHOLD ?= 50
BENCH_THRESHOLD_MEM ?= 10
BENCH_THRESHOLD_TIME_NOISY ?= 200
BENCH_MEM_NOISY ?= repro.BenchmarkAblationParallelism/*,repro.BenchmarkLiveIndexDelta/*,repro/internal/rov.BenchmarkLiveApply
BENCH_TIME_NOISY ?= repro.BenchmarkLiveIndexDelta/*,repro/internal/rov.BenchmarkLiveApply,repro/cmd/rtrload.BenchmarkRTRLoad/*
bench-diff:
	$(GO) run ./cmd/benchjson -diff -threshold $(BENCH_THRESHOLD) \
		-threshold-bytes $(BENCH_THRESHOLD_MEM) -threshold-allocs $(BENCH_THRESHOLD_MEM) \
		-mem-noisy '$(BENCH_MEM_NOISY)' \
		-time-noisy '$(BENCH_TIME_NOISY)' -threshold-time-noisy $(BENCH_THRESHOLD_TIME_NOISY) \
		$(BENCH_OLD) $(BENCH_NEW)

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzTrieVsReference -fuzztime=30s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzIndex -fuzztime=30s ./internal/rov/
	$(GO) test -run='^$$' -fuzz=FuzzCompactIndex -fuzztime=30s ./internal/rov/
