GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke fuzz

# check is the CI gate: formatting, vet, build, and the race-enabled tests.
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# BENCH_JSON is where bench archives its parsed results (committed to the
# repo so the perf trajectory across PRs is tracked in-tree).
BENCH_JSON ?= BENCH_PR3.json

# bench runs the in-package core and rov benchmarks plus the paper-evaluation
# benches; -count=1 defeats test caching so numbers are always fresh. The raw
# output is parsed into $(BENCH_JSON) by cmd/benchjson.
bench:
	@rm -f bench.out
	$(GO) test -run='^$$' -bench=. -benchmem -count=1 ./internal/core/ ./internal/rov/ . > bench.out 2>&1; \
		status=$$?; cat bench.out; \
		if [ $$status -ne 0 ]; then rm -f bench.out; exit $$status; fi
	$(GO) run ./cmd/benchjson -in bench.out -out $(BENCH_JSON)
	@rm -f bench.out

# bench-smoke is the quick pipeline-regression gate CI runs: the core and rov
# micro benches and the headline compression bench at a handful of iterations.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=10x -benchmem -count=1 ./internal/core/ ./internal/rov/
	$(GO) test -run='^$$' -bench='^(BenchmarkFigure2|BenchmarkCompressToday)$$' -benchtime=3x -benchmem -count=1 .

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzTrieVsReference -fuzztime=30s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzIndex -fuzztime=30s ./internal/rov/
