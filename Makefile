GO ?= go

.PHONY: check fmt vet build test race bench bench-smoke fuzz

# check is the CI gate: formatting, vet, build, and the race-enabled tests.
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the in-package core benchmarks plus the paper-evaluation
# benches; -count=1 defeats test caching so numbers are always fresh.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -count=1 ./internal/core/ .

# bench-smoke is the quick pipeline-regression gate CI runs: the core micro
# benches and the headline compression bench at a handful of iterations.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=10x -benchmem -count=1 ./internal/core/
	$(GO) test -run='^$$' -bench='^(BenchmarkFigure2|BenchmarkCompressToday)$$' -benchtime=3x -benchmem -count=1 .

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzTrieVsReference -fuzztime=30s ./internal/core/
